//! The model-evaluation pipeline: labeled example → prompt → transport →
//! model → verbose response → extraction → prediction record.
//!
//! Everything downstream of the response string is *measured* — the same
//! extraction code would process a real API's output. Responses the
//! extractor cannot parse are flagged `needs_review` and default to the
//! negative answer (the paper routed these to manual review).
//!
//! The per-task logic lives in the [`squ_llm::RunTask`] impls; the one
//! generic driver is [`squ_llm::run_task`]. The `run_*` / `run_*_client`
//! functions below are compatibility shims over that driver: the plain
//! entry points wrap the model in a pass-through [`DirectClient`], the
//! `_client` variants accept any [`ModelClient`] — in particular a
//! fault-injecting [`squ_llm::Transport`] — and each outcome carries the
//! transport's [`squ_llm::CallRecord`].

use squ_llm::{run_task, run_task_direct, DirectClient, LanguageModel, ModelClient};
use squ_llm::{DatasetId, ModelId};
use squ_tasks::{
    EquivExample, EquivTask, ExplainExample, ExplainTask, PerfExample, PerfTask, SyntaxExample,
    SyntaxTask, TokenExample, TokenTask,
};
use squ_workload::Workload;

pub use squ_llm::{EquivOutcome, ExplainOutcome, PerfOutcome, SyntaxOutcome, TokenOutcome};

/// Map a workload to its dataset id.
pub fn dataset_id(w: Workload) -> DatasetId {
    DatasetId::from(w)
}

/// Run a model over the syntax dataset (pass-through transport).
pub fn run_syntax(
    model: &dyn LanguageModel,
    ds: DatasetId,
    examples: &[SyntaxExample],
) -> Vec<SyntaxOutcome> {
    run_task_direct(&SyntaxTask, model, ds, examples)
}

/// Run any transport client over the syntax dataset.
pub fn run_syntax_client(
    client: &dyn ModelClient,
    ds: DatasetId,
    examples: &[SyntaxExample],
) -> Vec<SyntaxOutcome> {
    run_task(&SyntaxTask, client, ds, examples)
}

/// Run a model over the missing-token dataset (pass-through transport).
pub fn run_token(
    model: &dyn LanguageModel,
    ds: DatasetId,
    examples: &[TokenExample],
) -> Vec<TokenOutcome> {
    run_task_direct(&TokenTask, model, ds, examples)
}

/// Run any transport client over the missing-token dataset.
pub fn run_token_client(
    client: &dyn ModelClient,
    ds: DatasetId,
    examples: &[TokenExample],
) -> Vec<TokenOutcome> {
    run_task(&TokenTask, client, ds, examples)
}

/// Run a model over the equivalence dataset (pass-through transport).
pub fn run_equiv(
    model: &dyn LanguageModel,
    ds: DatasetId,
    examples: &[EquivExample],
) -> Vec<EquivOutcome> {
    run_task_direct(&EquivTask, model, ds, examples)
}

/// Run any transport client over the equivalence dataset.
pub fn run_equiv_client(
    client: &dyn ModelClient,
    ds: DatasetId,
    examples: &[EquivExample],
) -> Vec<EquivOutcome> {
    run_task(&EquivTask, client, ds, examples)
}

/// Run a model over the performance dataset (pass-through transport).
pub fn run_perf(model: &dyn LanguageModel, examples: &[PerfExample]) -> Vec<PerfOutcome> {
    run_perf_client(&DirectClient(model), examples)
}

/// Run any transport client over the performance dataset.
pub fn run_perf_client(client: &dyn ModelClient, examples: &[PerfExample]) -> Vec<PerfOutcome> {
    run_task(&PerfTask, client, DatasetId::Sdss, examples)
}

/// Run a model over the explanation dataset (pass-through transport).
pub fn run_explain(model: &dyn LanguageModel, examples: &[ExplainExample]) -> Vec<ExplainOutcome> {
    run_explain_client(&DirectClient(model), examples)
}

/// Run any transport client over the explanation dataset.
pub fn run_explain_client(
    client: &dyn ModelClient,
    examples: &[ExplainExample],
) -> Vec<ExplainOutcome> {
    run_task(&ExplainTask, client, DatasetId::Spider, examples)
}

/// A model registry entry: the five simulated paper models.
pub fn all_models() -> Vec<(ModelId, Box<dyn LanguageModel>)> {
    ModelId::ALL
        .into_iter()
        .map(|id| {
            (
                id,
                Box::new(squ_llm::SimulatedModel::new(id)) as Box<dyn LanguageModel>,
            )
        })
        .collect()
}
