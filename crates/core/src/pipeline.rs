//! The model-evaluation pipeline: labeled example → prompt → transport →
//! model → verbose response → extraction → prediction record.
//!
//! Everything downstream of the response string is *measured* — the same
//! extraction code would process a real API's output. Responses the
//! extractor cannot parse are flagged `needs_review` and default to the
//! negative answer (the paper routed these to manual review).
//!
//! Model calls go through the [`ModelClient`] transport boundary: the
//! plain `run_*` entry points wrap the model in a pass-through
//! [`DirectClient`], while the `run_*_client` variants accept any client —
//! in particular a fault-injecting [`squ_llm::Transport`] — and each
//! outcome carries the transport's [`CallRecord`] (attempt count, fault
//! kinds survived, whether retries were exhausted).

use squ_llm::{
    extract_binary, extract_label, extract_position, extract_word, prompts, CallRecord,
    DirectClient, GroundTruth, LanguageModel, ModelClient, Request, Task,
};
use squ_llm::{DatasetId, ModelId};
use squ_tasks::{EquivExample, ExplainExample, PerfExample, SyntaxExample, TokenExample};
use squ_workload::Workload;

/// Map a workload to its dataset id.
pub fn dataset_id(w: Workload) -> DatasetId {
    match w {
        Workload::Sdss => DatasetId::Sdss,
        Workload::SqlShare => DatasetId::SqlShare,
        Workload::JoinOrder => DatasetId::JoinOrder,
        Workload::Spider => DatasetId::Spider,
    }
}

/// Outcome of one syntax-task example.
#[derive(Debug, Clone)]
pub struct SyntaxOutcome {
    /// The labeled example.
    pub example: SyntaxExample,
    /// Raw model response.
    pub response: String,
    /// Extracted binary answer (false when unparseable).
    pub said_error: bool,
    /// Extracted error-type label, if the model named one.
    pub said_type: Option<String>,
    /// Response could not be parsed automatically.
    pub needs_review: bool,
    /// Transport telemetry for the call behind this outcome.
    pub call: CallRecord,
}

/// Run a model over the syntax dataset (pass-through transport).
pub fn run_syntax(
    model: &dyn LanguageModel,
    ds: DatasetId,
    examples: &[SyntaxExample],
) -> Vec<SyntaxOutcome> {
    run_syntax_client(&DirectClient(model), ds, examples)
}

/// Run any transport client over the syntax dataset.
pub fn run_syntax_client(
    client: &dyn ModelClient,
    ds: DatasetId,
    examples: &[SyntaxExample],
) -> Vec<SyntaxOutcome> {
    let instruction = prompts::task_prompt(Task::Syntax);
    examples
        .iter()
        .map(|e| {
            let req = Request {
                task: Task::Syntax,
                dataset: ds,
                example_id: e.query_id.clone(),
                prompt: prompts::render_prompt(instruction, &e.sql),
                truth: GroundTruth::Syntax {
                    has_error: e.has_error,
                    error_type: e.error_type.map(|t| t.label().to_string()),
                },
                props: e.props.clone(),
            };
            let (response, call) = client.call(&req);
            let bin = extract_binary(&response);
            let said_error = bin.value().unwrap_or(false);
            let labels: Vec<&str> = squ_tasks::SyntaxErrorType::ALL
                .iter()
                .map(|t| t.label())
                .collect();
            let said_type = if said_error {
                extract_label(&response, &labels).value()
            } else {
                None
            };
            SyntaxOutcome {
                example: e.clone(),
                said_error,
                said_type,
                needs_review: bin.value().is_none(),
                response,
                call,
            }
        })
        .collect()
}

/// Outcome of one missing-token example.
#[derive(Debug, Clone)]
pub struct TokenOutcome {
    /// The labeled example.
    pub example: TokenExample,
    /// Raw model response.
    pub response: String,
    /// Extracted binary answer.
    pub said_missing: bool,
    /// Extracted token-type label.
    pub said_type: Option<String>,
    /// Extracted position.
    pub said_position: Option<usize>,
    /// Extracted guess for the missing word itself.
    pub said_word: Option<String>,
    /// Response could not be parsed automatically.
    pub needs_review: bool,
    /// Transport telemetry for the call behind this outcome.
    pub call: CallRecord,
}

/// Run a model over the missing-token dataset (pass-through transport).
pub fn run_token(
    model: &dyn LanguageModel,
    ds: DatasetId,
    examples: &[TokenExample],
) -> Vec<TokenOutcome> {
    run_token_client(&DirectClient(model), ds, examples)
}

/// Run any transport client over the missing-token dataset.
pub fn run_token_client(
    client: &dyn ModelClient,
    ds: DatasetId,
    examples: &[TokenExample],
) -> Vec<TokenOutcome> {
    let instruction = prompts::task_prompt(Task::MissToken);
    examples
        .iter()
        .map(|e| {
            let req = Request {
                task: Task::MissToken,
                dataset: ds,
                example_id: e.query_id.clone(),
                prompt: prompts::render_prompt(instruction, &e.sql),
                truth: GroundTruth::Token {
                    missing: e.has_missing,
                    token_type: e.token_type.map(|t| t.label().to_string()),
                    removed: e.removed_text.clone(),
                    position: e.position,
                    word_count: e.props.word_count,
                },
                props: e.props.clone(),
            };
            let (response, call) = client.call(&req);
            let bin = extract_binary(&response);
            let said_missing = bin.value().unwrap_or(false);
            let labels: Vec<&str> = squ_tasks::TokenType::ALL
                .iter()
                .map(|t| t.label())
                .collect();
            let (said_type, said_position, said_word) = if said_missing {
                (
                    extract_label(&response, &labels).value(),
                    extract_position(&response).value(),
                    extract_word(&response).value(),
                )
            } else {
                (None, None, None)
            };
            TokenOutcome {
                example: e.clone(),
                said_missing,
                said_type,
                said_position,
                said_word,
                needs_review: bin.value().is_none(),
                response,
                call,
            }
        })
        .collect()
}

/// Outcome of one equivalence example.
#[derive(Debug, Clone)]
pub struct EquivOutcome {
    /// The labeled pair.
    pub example: EquivExample,
    /// Raw model response.
    pub response: String,
    /// Extracted answer.
    pub said_equivalent: bool,
    /// Extracted transform label.
    pub said_type: Option<String>,
    /// Response could not be parsed automatically.
    pub needs_review: bool,
    /// Transport telemetry for the call behind this outcome.
    pub call: CallRecord,
}

/// Run a model over the equivalence dataset (pass-through transport).
pub fn run_equiv(
    model: &dyn LanguageModel,
    ds: DatasetId,
    examples: &[EquivExample],
) -> Vec<EquivOutcome> {
    run_equiv_client(&DirectClient(model), ds, examples)
}

/// Run any transport client over the equivalence dataset.
pub fn run_equiv_client(
    client: &dyn ModelClient,
    ds: DatasetId,
    examples: &[EquivExample],
) -> Vec<EquivOutcome> {
    let instruction = prompts::task_prompt(Task::Equiv);
    let equiv_labels: Vec<&str> = squ_tasks::EquivType::ALL
        .iter()
        .map(|t| t.label())
        .collect();
    examples
        .iter()
        .map(|e| {
            let payload = format!("Query 1: {}\nQuery 2: {}", e.sql1, e.sql2);
            let req = Request {
                task: Task::Equiv,
                dataset: ds,
                example_id: e.query_id.clone(),
                prompt: prompts::render_prompt(instruction, &payload),
                truth: GroundTruth::Equiv {
                    equivalent: e.equivalent,
                    transform: e.transform.clone(),
                },
                props: e.props.clone(),
            };
            let (response, call) = client.call(&req);
            let bin = extract_binary(&response);
            let said_equivalent = bin.value().unwrap_or(false);
            let said_type = if said_equivalent {
                extract_label(&response, &equiv_labels).value()
            } else {
                None
            };
            EquivOutcome {
                example: e.clone(),
                said_equivalent,
                said_type,
                needs_review: bin.value().is_none(),
                response,
                call,
            }
        })
        .collect()
}

/// Outcome of one performance-prediction example.
#[derive(Debug, Clone)]
pub struct PerfOutcome {
    /// The labeled example.
    pub example: PerfExample,
    /// Raw model response.
    pub response: String,
    /// Extracted answer.
    pub said_costly: bool,
    /// Response could not be parsed automatically.
    pub needs_review: bool,
    /// Transport telemetry for the call behind this outcome.
    pub call: CallRecord,
}

/// Run a model over the performance dataset (pass-through transport).
pub fn run_perf(model: &dyn LanguageModel, examples: &[PerfExample]) -> Vec<PerfOutcome> {
    run_perf_client(&DirectClient(model), examples)
}

/// Run any transport client over the performance dataset.
pub fn run_perf_client(client: &dyn ModelClient, examples: &[PerfExample]) -> Vec<PerfOutcome> {
    let instruction = prompts::task_prompt(Task::Perf);
    examples
        .iter()
        .map(|e| {
            let req = Request {
                task: Task::Perf,
                dataset: DatasetId::Sdss,
                example_id: e.query_id.clone(),
                prompt: prompts::render_prompt(instruction, &e.sql),
                truth: GroundTruth::Perf {
                    costly: e.is_costly,
                },
                props: e.props.clone(),
            };
            let (response, call) = client.call(&req);
            let bin = extract_binary(&response);
            PerfOutcome {
                example: e.clone(),
                said_costly: bin.value().unwrap_or(false),
                needs_review: bin.value().is_none(),
                response,
                call,
            }
        })
        .collect()
}

/// Outcome of one explanation example.
#[derive(Debug, Clone)]
pub struct ExplainOutcome {
    /// The labeled example.
    pub example: ExplainExample,
    /// The model's explanation.
    pub explanation: String,
    /// Rubric score.
    pub rubric: squ_eval::RubricScore,
    /// Transport telemetry for the call behind this outcome.
    pub call: CallRecord,
}

/// Run a model over the explanation dataset (pass-through transport).
pub fn run_explain(model: &dyn LanguageModel, examples: &[ExplainExample]) -> Vec<ExplainOutcome> {
    run_explain_client(&DirectClient(model), examples)
}

/// Run any transport client over the explanation dataset.
pub fn run_explain_client(
    client: &dyn ModelClient,
    examples: &[ExplainExample],
) -> Vec<ExplainOutcome> {
    let instruction = prompts::task_prompt(Task::Explain);
    examples
        .iter()
        .map(|e| {
            let req = Request {
                task: Task::Explain,
                dataset: DatasetId::Spider,
                example_id: e.query_id.clone(),
                prompt: prompts::render_prompt(instruction, &e.sql),
                truth: GroundTruth::Explain {
                    reference: e.reference.clone(),
                    facts: e.facts.clone(),
                    sql: e.sql.clone(),
                },
                props: e.props.clone(),
            };
            let (explanation, call) = client.call(&req);
            let rubric = squ_eval::score_explanation(&explanation, &e.facts);
            ExplainOutcome {
                example: e.clone(),
                explanation,
                rubric,
                call,
            }
        })
        .collect()
}

/// A model registry entry: the five simulated paper models.
pub fn all_models() -> Vec<(ModelId, Box<dyn LanguageModel>)> {
    ModelId::ALL
        .into_iter()
        .map(|id| {
            (
                id,
                Box::new(squ_llm::SimulatedModel::new(id)) as Box<dyn LanguageModel>,
            )
        })
        .collect()
}
