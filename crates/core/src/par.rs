//! Deterministic parallel execution over OS threads.
//!
//! A dependency-free worker pool built on [`std::thread::scope`]: results
//! land in slots indexed by input position, so the output order — and
//! therefore everything derived from it — is byte-identical whatever the
//! job count or OS scheduling. `jobs <= 1` short-circuits to a plain
//! sequential map with no thread machinery at all.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The machine's available parallelism (1 if it cannot be determined).
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Map `f` over `items` on up to `jobs` worker threads.
///
/// Output position `i` always holds `f(items[i])`, so results are
/// identical to the sequential `items.into_iter().map(f).collect()` for
/// any `jobs`. Workers pull the next unclaimed index from a shared
/// counter, which keeps long-running items from serializing behind a
/// static partition. A panic inside `f` propagates after all workers
/// finish (the [`std::thread::scope`] join contract).
pub fn map<T, U, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    if jobs <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let out: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(n) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i]
                    .lock()
                    .expect("work slot lock") // lint:allow: poisoned only if a worker already panicked
                    .take()
                    .expect("each index claimed once"); // lint:allow: slot counter hands out each index once
                let result = f(item);
                *out[i].lock().expect("result slot lock") = Some(result); // lint:allow: poisoned only if a worker already panicked
            });
        }
    });
    out.into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot lock") // lint:allow: poisoned only if a worker already panicked
                .expect("every slot filled") // lint:allow: every worker fills the slots it claimed
        })
        .collect()
}

/// Split the index range `[start, start + len)` into `shards` contiguous,
/// near-equal `(start, len)` ranges (the first `len % shards` ranges get
/// one extra item). Concatenating the ranges in order always reproduces
/// the input range exactly, which is what makes sharded stream builds
/// merge back byte-identical to the unsharded build.
pub fn shard_ranges(start: u64, len: u64, shards: usize) -> Vec<(u64, u64)> {
    let shards = shards.max(1) as u64;
    let base = len / shards;
    let extra = len % shards;
    let mut out = Vec::with_capacity(shards as usize);
    let mut at = start;
    for k in 0..shards {
        let n = base + u64::from(k < extra);
        out.push((at, n));
        at += n;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_tile_the_input_exactly() {
        for (start, len, shards) in [(0, 100, 1), (0, 100, 3), (7, 13, 8), (5, 0, 4), (0, 3, 7)] {
            let ranges = shard_ranges(start, len, shards);
            assert_eq!(ranges.len(), shards.max(1));
            let mut at = start;
            for &(s, n) in &ranges {
                assert_eq!(s, at, "contiguous at {s}");
                at += n;
            }
            assert_eq!(at, start + len, "covers the range");
            let (min, max) = ranges
                .iter()
                .fold((u64::MAX, 0), |(lo, hi), &(_, n)| (lo.min(n), hi.max(n)));
            assert!(max - min <= 1, "near-equal: {ranges:?}");
        }
    }

    #[test]
    fn matches_sequential_for_any_job_count() {
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|v| v * v + 1).collect();
        for jobs in [1, 2, 3, 8, 64, 200] {
            let got = map(jobs, items.clone(), |v| v * v + 1);
            assert_eq!(got, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(map(8, Vec::<u8>::new(), |v| v), Vec::<u8>::new());
        assert_eq!(map(8, vec![41], |v| v + 1), vec![42]);
    }

    #[test]
    fn uneven_workloads_keep_order() {
        // later items finish first; slots must still line up
        let got = map(4, vec![30u64, 20, 10, 0], |ms| {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            ms
        });
        assert_eq!(got, vec![30, 20, 10, 0]);
    }
}
