//! The type-erased task registry: the one place in the core crate that
//! enumerates all six task families.
//!
//! Every generic driver (suite construction, audit, faults, export, the
//! artifact store) iterates [`registry`] instead of matching per-task
//! hard-coded variants. Adding a task means implementing
//! [`squ_tasks::Task`] + [`squ_llm::RunTask`] and appending one line here;
//! no driver changes — the dialect-translation family landed exactly this
//! way. The `xtask lint` rule banning per-task `match` statements in this
//! crate exempts this module.

use squ_llm::{run_task, CallRecord, DatasetId, ModelClient, RunTask};
use squ_tasks::{
    AuditCtx, EquivTask, ExplainTask, PerfTask, SyntaxTask, TaskId, TokenTask, TranslateTask,
};
use squ_workload::{Dataset, Workload};
use std::any::Any;

/// A type-erased set of task examples (`Vec<T::Example>` behind `Any`).
pub type ExampleSet = Box<dyn Any + Send + Sync>;

/// Object-safe view of one task family, erasing the associated `Example`
/// and `Outcome` types so heterogeneous tasks share one driver loop.
pub trait DynTask: Send + Sync {
    /// Which task family this is (all static metadata hangs off the id).
    fn id(&self) -> TaskId;

    /// Builder version tag, part of the artifact-store fingerprint.
    fn version(&self) -> u32;

    /// Derive the labeled dataset from a sampled workload.
    fn build(&self, ds: &Dataset, seed: u64) -> ExampleSet;

    /// Number of examples in a set built by this task.
    fn set_len(&self, set: &ExampleSet) -> usize;

    /// Run a transport client over the set and report the
    /// `(needs_review, call record)` facts fault reports fold.
    fn call_facts(
        &self,
        client: &dyn ModelClient,
        ds: DatasetId,
        set: &ExampleSet,
    ) -> Vec<(bool, CallRecord)>;

    /// Statically audit every label in the set onto `ctx`.
    fn audit(&self, w: Workload, set: &ExampleSet, ctx: &mut AuditCtx);

    /// One compact-JSON line per example, for the benchmark export.
    fn export_lines(&self, set: &ExampleSet) -> Vec<String>;

    /// Serialize a set for the artifact store (compact JSON array).
    fn encode_set(&self, set: &ExampleSet) -> String;

    /// Decode a set stored by [`DynTask::encode_set`].
    fn decode_set(&self, json: &str) -> Result<ExampleSet, String>;
}

/// Adapter erasing a typed [`RunTask`] into a [`DynTask`].
struct Erased<T: RunTask + Send + Sync>(T);

impl<T: RunTask + Send + Sync> Erased<T> {
    fn slice<'a>(&self, set: &'a ExampleSet) -> &'a [T::Example] {
        set.downcast_ref::<Vec<T::Example>>()
            .expect("example set downcasts to its own task's example type") // lint:allow: sets are keyed by task in every driver
            .as_slice()
    }
}

impl<T: RunTask + Send + Sync> DynTask for Erased<T> {
    fn id(&self) -> TaskId {
        self.0.id()
    }

    fn version(&self) -> u32 {
        self.0.version()
    }

    fn build(&self, ds: &Dataset, seed: u64) -> ExampleSet {
        Box::new(self.0.build(ds, seed))
    }

    fn set_len(&self, set: &ExampleSet) -> usize {
        self.slice(set).len()
    }

    fn call_facts(
        &self,
        client: &dyn ModelClient,
        ds: DatasetId,
        set: &ExampleSet,
    ) -> Vec<(bool, CallRecord)> {
        run_task(&self.0, client, ds, self.slice(set))
            .iter()
            .map(|o| {
                let (review, call) = T::call_fact(o);
                (review, call.clone())
            })
            .collect()
    }

    fn audit(&self, w: Workload, set: &ExampleSet, ctx: &mut AuditCtx) {
        self.0.audit(w, self.slice(set), ctx);
    }

    fn export_lines(&self, set: &ExampleSet) -> Vec<String> {
        self.slice(set)
            .iter()
            .map(|e| {
                serde_json::to_string(e).expect("benchmark records serialize") // lint:allow: plain data structs always serialize
            })
            .collect()
    }

    fn encode_set(&self, set: &ExampleSet) -> String {
        let records = self.slice(set).to_vec();
        serde_json::to_string(&records).expect("records serialize") // lint:allow: plain data structs always serialize
    }

    fn decode_set(&self, json: &str) -> Result<ExampleSet, String> {
        serde_json::from_str::<Vec<T::Example>>(json)
            .map(|v| Box::new(v) as ExampleSet)
            .map_err(|e| e.to_string())
    }
}

/// The six tasks (the paper's five plus dialect translation), in
/// canonical order (matches [`TaskId::ALL`]).
pub fn registry() -> [&'static dyn DynTask; 6] {
    [
        &Erased(SyntaxTask),
        &Erased(TokenTask),
        &Erased(EquivTask),
        &Erased(PerfTask),
        &Erased(ExplainTask),
        &Erased(TranslateTask),
    ]
}

/// Look up one task by id.
pub fn task(id: TaskId) -> &'static dyn DynTask {
    let idx = TaskId::ALL
        .iter()
        .position(|t| *t == id)
        .expect("TaskId::ALL contains every variant"); // lint:allow: ALL is exhaustive by construction
    registry()[idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_task_id_order() {
        let ids: Vec<TaskId> = registry().iter().map(|t| t.id()).collect();
        assert_eq!(ids, TaskId::ALL.to_vec());
        for id in TaskId::ALL {
            assert_eq!(task(id).id(), id);
        }
    }

    #[test]
    fn sets_round_trip_through_the_store_encoding() {
        let t = task(TaskId::Syntax);
        let examples: Vec<squ_tasks::SyntaxExample> = Vec::new();
        let set: ExampleSet = Box::new(examples);
        let json = t.encode_set(&set);
        let back = t.decode_set(&json).expect("decodes");
        assert_eq!(t.set_len(&back), 0);
    }
}
