//! Orchestration of `squ-fuzz` runs: parallel case execution over the
//! [`par`] layer plus warm-resume through the artifact store.
//!
//! Each case is keyed in the store by `(fuzz seed, index)` via
//! [`fp_fuzz`], so a re-run with `--resume` only
//! executes cases the store has not judged yet — and because every case is
//! fully determined by its key, a resumed report is byte-identical to a
//! cold one.

use crate::par;
use crate::store::{fp_fuzz_dialect, Store};
use crate::timing;
use squ_fuzz::{engine_bench, run_case, CaseReport, Dialect, EngineBench, FuzzConfig, FuzzReport};

/// Store stage name for fuzz cases.
const STAGE: &str = "fuzz";

/// Store entry name of one fuzz case: the historical `case{index}` for
/// the default `squ` corpus, `case{index}_{dialect}` for per-dialect
/// corpora so a multi-dialect store stays readable.
fn case_name(index: u64, dialect: Dialect) -> String {
    if dialect == Dialect::Squ {
        format!("case{index}")
    } else {
        format!("case{index}_{}", dialect.name())
    }
}

/// Run `cases` fuzz cases under `fuzz_seed` with `jobs` workers, over the
/// default `squ`-dialect corpus.
///
/// When `store` is given, already-judged cases load from it and fresh
/// results are saved back. Case order in the report is by index
/// regardless of `jobs` or cache state.
pub fn run_fuzz(cases: u64, fuzz_seed: u64, jobs: usize, store: Option<&mut Store>) -> FuzzReport {
    run_fuzz_dialect(cases, fuzz_seed, jobs, store, Dialect::Squ)
}

/// [`run_fuzz`] over a per-dialect corpus: every subject query is also
/// translated into `dialect`, emitted as that dialect's text, and held to
/// the dialect round-trip law. Store keys fold the dialect name, so each
/// corpus resumes independently.
pub fn run_fuzz_dialect(
    cases: u64,
    fuzz_seed: u64,
    jobs: usize,
    mut store: Option<&mut Store>,
    dialect: Dialect,
) -> FuzzReport {
    let cfg = FuzzConfig::for_dialect(fuzz_seed, dialect);

    let mut slots: Vec<Option<CaseReport>> = Vec::with_capacity(cases as usize);
    let mut pending: Vec<u64> = Vec::new();
    for index in 0..cases {
        let cached = store.as_mut().and_then(|s| {
            s.load_value::<CaseReport>(
                STAGE,
                &case_name(index, dialect),
                fp_fuzz_dialect(fuzz_seed, index, dialect.name()),
            )
        });
        if cached.is_none() {
            pending.push(index);
        }
        slots.push(cached);
    }

    let computed = par::map(jobs, pending, |index| run_case(&cfg, index));

    for report in computed {
        let index = report.index;
        if let Some(s) = store.as_mut() {
            s.save_value(
                STAGE,
                &case_name(index, dialect),
                fp_fuzz_dialect(fuzz_seed, index, dialect.name()),
                &report,
            );
        }
        slots[index as usize] = Some(report);
    }

    let ordered: Vec<CaseReport> = slots.into_iter().flatten().collect();
    FuzzReport::from_cases_in(fuzz_seed, dialect.name(), &ordered)
}

/// Run the compiled-vs-interpreter engine benchmark over the same
/// generator stream a fuzz run with `(fuzz_seed, cases)` would exercise,
/// recording its phase wall-clock as timing spans and its deterministic
/// tallies as timing counters (both land in `timings.json`).
///
/// Single-threaded by design: the speedup ratio is a per-core comparison,
/// and interleaving the two engines' work across threads would make the
/// phase timings meaningless.
pub fn run_engine_bench(cases: u64, fuzz_seed: u64) -> EngineBench {
    let bench = engine_bench(fuzz_seed, cases);
    timing::record("fuzz.differential.compiled", bench.differential_compiled);
    timing::record(
        "fuzz.differential.interpreter",
        bench.differential_interpreted,
    );
    timing::record("fuzz.equiv_verify.compiled", bench.equiv_compiled);
    timing::record("fuzz.equiv_verify.interpreter", bench.equiv_interpreted);
    let c = &bench.counters;
    timing::count("fuzz.bench.rows_scanned", c.rows_scanned);
    timing::count("fuzz.bench.join_pairs", c.join_pairs);
    timing::count("fuzz.bench.batches", c.batches);
    timing::count("fuzz.bench.index_probes", c.index_probes);
    timing::count("fuzz.bench.index_hits", c.index_hits);
    timing::count("fuzz.bench.subquery_evals", c.subquery_evals);
    timing::count("fuzz.bench.compiled", c.compiled);
    timing::count("fuzz.bench.fallbacks", c.fallbacks);
    timing::count("fuzz.bench.empty_prunes", c.empty_prunes);
    timing::count("fuzz.bench.executions", bench.executions);
    timing::count("fuzz.bench.budget_skips", bench.budget_skips);
    timing::count("fuzz.bench.divergences", bench.divergences);
    bench
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> (std::path::PathBuf, Store) {
        let root = std::env::temp_dir().join(format!("squ-fuzz-run-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        (root.clone(), Store::open(root))
    }

    #[test]
    fn jobs_count_does_not_change_the_report() {
        let a = run_fuzz(10, 3, 1, None);
        let b = run_fuzz(10, 3, 4, None);
        assert_eq!(a.to_json(), b.to_json());
        assert!(a.is_clean(), "{}", a.to_json());
    }

    #[test]
    fn warm_resume_skips_judged_cases_and_reproduces_the_report() {
        let (root, mut store) = temp_store("resume");
        let cold = run_fuzz(8, 5, 2, Some(&mut store));
        assert_eq!(store.total_misses(), 8, "cold run must miss every case");

        let mut store2 = Store::open(&root);
        let warm = run_fuzz(8, 5, 2, Some(&mut store2));
        let stats = store2.stats().get("fuzz").copied().unwrap_or_default();
        assert_eq!(stats.hits, 8, "warm run must hit every case");
        assert_eq!(cold.to_json(), warm.to_json());

        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn dialect_corpora_resume_independently() {
        let (root, mut store) = temp_store("dialect");
        let cold = run_fuzz_dialect(6, 5, 2, Some(&mut store), Dialect::Tsql);
        assert_eq!(store.total_misses(), 6, "cold run must miss every case");
        assert_eq!(cold.dialect, "tsql");
        assert!(cold.is_clean(), "{}", cold.to_json());
        assert_eq!(cold.counts.dialect_pass, 6);

        let mut store2 = Store::open(&root);
        let warm = run_fuzz_dialect(6, 5, 2, Some(&mut store2), Dialect::Tsql);
        let stats = store2.stats().get("fuzz").copied().unwrap_or_default();
        assert_eq!(stats.hits, 6, "warm run must hit every case");
        assert_eq!(cold.to_json(), warm.to_json());

        // another dialect over the same (seed, index) range shares nothing
        let mut store3 = Store::open(&root);
        let other = run_fuzz_dialect(6, 5, 2, Some(&mut store3), Dialect::Mysql);
        assert_eq!(store3.total_misses(), 6, "dialects must not share entries");
        assert_eq!(other.dialect, "mysql");

        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn seed_changes_invalidate_the_cache() {
        let (root, mut store) = temp_store("seedswap");
        let _ = run_fuzz(4, 1, 1, Some(&mut store));
        let mut store2 = Store::open(&root);
        let _ = run_fuzz(4, 2, 1, Some(&mut store2));
        assert_eq!(store2.total_misses(), 4, "a new seed must miss everywhere");
        let _ = std::fs::remove_dir_all(&root);
    }
}
