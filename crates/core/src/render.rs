//! Plain-text rendering of tables and figures (bar charts), plus CSV
//! output — the repro harness prints the paper's artifacts with these.

/// A simple text table builder with a header row.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with the given header.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        debug_assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Append a row of string slices.
    pub fn row_strs(&mut self, cells: &[&str]) -> &mut Self {
        let owned: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        self.row(&owned)
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {:<width$} |", c, width = w));
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (comma-separated, quoted when needed).
    pub fn to_csv(&self) -> String {
        let quote = |s: &str| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| quote(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Render a horizontal bar chart: one `(label, value)` per line, bars
/// scaled to `width` characters against the max value.
pub fn bar_chart(items: &[(String, f64)], width: usize) -> String {
    let max = items
        .iter()
        .map(|(_, v)| *v)
        .fold(0.0_f64, f64::max)
        .max(1e-12);
    let label_w = items
        .iter()
        .map(|(l, _)| l.chars().count())
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    for (label, value) in items {
        let n = ((value / max) * width as f64).round() as usize;
        out.push_str(&format!(
            "{:<label_w$} | {:<width$} {:.2}\n",
            label,
            "█".repeat(n),
            value,
            label_w = label_w,
            width = width
        ));
    }
    out
}

/// Format a float with 2 decimals (the paper's table precision).
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(&["Model", "P", "R"]);
        t.row_strs(&["GPT4", "0.98", "0.95"]);
        t.row_strs(&["Gemini", "0.94", "0.70"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("Model"));
        assert!(lines[2].contains("GPT4"));
        // all rows same width
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn csv_quotes_commas() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row_strs(&["x,y", "plain"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\",plain"));
    }

    #[test]
    fn bar_chart_scales() {
        let s = bar_chart(
            &[("long".to_string(), 10.0), ("short".to_string(), 5.0)],
            10,
        );
        let lines: Vec<&str> = s.lines().collect();
        let long_bars = lines[0].matches('█').count();
        let short_bars = lines[1].matches('█').count();
        assert_eq!(long_bars, 10);
        assert_eq!(short_bars, 5);
    }
}
