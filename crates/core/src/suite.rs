//! The benchmark suite: all sampled workloads and derived task datasets,
//! built deterministically from one master seed.
//!
//! Task datasets are held as type-erased [`TaskSet`]s in canonical
//! registry order — one per `(task, workload)` pair from
//! [`crate::registry::registry`] — so every driver (audit, faults,
//! export) iterates [`Suite::sets`] instead of per-task fields.

use crate::registry::{registry, DynTask, ExampleSet};
use crate::store::{fp_dataset, fp_workload, Store};
use crate::{par, timing};
use squ_tasks::{
    EquivExample, ExplainExample, PerfExample, SyntaxExample, TaskId, TokenExample,
    TranslateExample,
};
use squ_workload::{build, Dataset, Workload};

/// The paper's master seed (the year of the SDSS log slice).
pub const PAPER_SEED: u64 = 2023;

/// One derived task dataset: a task, the workload it came from, and the
/// type-erased examples (`Vec<Example>` behind `Any`).
pub struct TaskSet {
    task: &'static dyn DynTask,
    workload: Workload,
    examples: ExampleSet,
}

impl TaskSet {
    /// The owning task.
    pub fn task(&self) -> &'static dyn DynTask {
        self.task
    }

    /// The workload the examples derive from.
    pub fn workload(&self) -> Workload {
        self.workload
    }

    /// The type-erased example set (downcast through the task).
    pub fn examples(&self) -> &ExampleSet {
        &self.examples
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.task.set_len(&self.examples)
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// All datasets of the benchmark, fully materialized.
pub struct Suite {
    /// Master seed.
    pub seed: u64,
    /// SDSS sampled workload (285 queries, with elapsed times).
    pub sdss: Dataset,
    /// SQLShare sampled workload (250 queries).
    pub sqlshare: Dataset,
    /// Join-Order workload (157 queries).
    pub joborder: Dataset,
    /// Spider sampled workload (200 queries, with descriptions).
    pub spider: Dataset,
    /// Derived task datasets, in canonical registry order.
    sets: Vec<TaskSet>,
}

/// One derived-dataset build job: the canonical slot it fills, the task,
/// and the source workload.
struct BuildJob {
    slot: usize,
    task: &'static dyn DynTask,
    workload: Workload,
}

/// Canonical `(task, workload)` job list, in registry order.
fn canonical_jobs() -> Vec<BuildJob> {
    let mut jobs = Vec::new();
    for task in registry() {
        for w in task.id().workloads() {
            jobs.push(BuildJob {
                slot: jobs.len(),
                task,
                workload: *w,
            });
        }
    }
    jobs
}

/// Timing-span name for one build job: multi-workload tasks carry the
/// workload suffix, single-workload tasks keep the bare task name.
fn span_name(task: &dyn DynTask, w: Workload) -> String {
    if task.id().workloads().len() > 1 {
        format!("suite.task.{}.{}", task.id().short(), w.name())
    } else {
        format!("suite.task.{}", task.id().short())
    }
}

impl Suite {
    /// Build the full suite from a master seed, using all available
    /// cores. Building includes the differential verification of every
    /// equivalence pair, so this is the dominant cost of a run.
    ///
    /// Equivalent to `new_with_jobs(seed, par::available_jobs())`; the
    /// result is byte-identical for every job count.
    pub fn new(seed: u64) -> Suite {
        Suite::new_with_jobs(seed, par::available_jobs())
    }

    /// Build the full suite on up to `jobs` worker threads (`1` =
    /// sequential). Determinism is unconditional: every dataset is built
    /// from its own seeded generator and results are reassembled in
    /// canonical registry order, so the suite content does not depend on
    /// `jobs` or thread scheduling.
    pub fn new_with_jobs(seed: u64, jobs: usize) -> Suite {
        Suite::assemble(seed, jobs, None)
    }

    /// Build the suite through an artifact [`Store`]: workloads and task
    /// datasets whose fingerprints are already stored load instead of
    /// building; misses build exactly as [`Suite::new_with_jobs`] would
    /// and are written back. Loaded stages are byte-identical to built
    /// ones (the store verifies payload hashes and the serde stack
    /// round-trips every example type exactly).
    pub fn load_or_build(seed: u64, jobs: usize, store: &mut Store) -> Suite {
        Suite::assemble(seed, jobs, Some(store))
    }

    fn assemble(seed: u64, jobs: usize, mut store: Option<&mut Store>) -> Suite {
        let start = std::time::Instant::now();

        // phase 1: the four sampled workloads, mutually independent
        let workload_ids = [
            Workload::Sdss,
            Workload::SqlShare,
            Workload::JoinOrder,
            Workload::Spider,
        ];
        let mut loaded: Vec<Option<Dataset>> = workload_ids
            .iter()
            .map(|w| {
                store.as_mut()?.load_value::<Dataset>(
                    "workload",
                    &slug(w.name()),
                    fp_workload(seed, *w),
                )
            })
            .collect();
        let missing: Vec<Workload> = workload_ids
            .iter()
            .copied()
            .filter(|w| loaded[workload_slot(*w)].is_none())
            .collect();
        let built = par::map(jobs, missing, |w| {
            (
                w,
                timing::time(&format!("suite.workload.{}", w.name()), || build(w, seed)),
            )
        });
        for (w, ds) in built {
            if let Some(store) = store.as_mut() {
                store.save_value("workload", &slug(w.name()), fp_workload(seed, w), &ds);
            }
            loaded[workload_slot(w)] = Some(ds);
        }
        let [sdss, sqlshare, joborder, spider]: [Dataset; 4] = loaded
            .into_iter()
            .map(|d| d.expect("all four workloads materialized")) // lint:allow: every slot is filled above
            .collect::<Vec<_>>()
            .try_into()
            .expect("four workloads in, four out"); // lint:allow: fixed-size list
        let datasets = [&sdss, &sqlshare, &joborder, &spider];
        let dataset_of = |w: Workload| -> &Dataset { datasets[workload_slot(w)] };

        // phase 2: derived task datasets. Store hits fill their canonical
        // slot immediately; misses go to the worker pool with equivalence
        // jobs leading the queue (differential verification dominates the
        // wall-clock, so they get threads first). Output order is fixed by
        // the canonical slot, not the queue.
        let mut jobs_list = canonical_jobs();
        let mut slots: Vec<Option<TaskSet>> = jobs_list.iter().map(|_| None).collect();
        if let Some(store) = store.as_mut() {
            jobs_list.retain(|job| {
                let fp = fp_dataset(seed, job.task, job.workload);
                let hit = store
                    .load("dataset", &set_name(job.task, job.workload), fp)
                    .and_then(|payload| job.task.decode_set(&payload).ok());
                match hit {
                    Some(examples) => {
                        slots[job.slot] = Some(TaskSet {
                            task: job.task,
                            workload: job.workload,
                            examples,
                        });
                        false
                    }
                    None => true,
                }
            });
        }
        jobs_list.sort_by_key(|job| job.task.id().schedule_class());
        let outputs = par::map(jobs, jobs_list, |job| {
            let examples = timing::time(&span_name(job.task, job.workload), || {
                job.task.build(dataset_of(job.workload), seed)
            });
            (job, examples)
        });
        for (job, examples) in outputs {
            if let Some(store) = store.as_mut() {
                store.save(
                    "dataset",
                    &set_name(job.task, job.workload),
                    fp_dataset(seed, job.task, job.workload),
                    &job.task.encode_set(&examples),
                );
            }
            slots[job.slot] = Some(TaskSet {
                task: job.task,
                workload: job.workload,
                examples,
            });
        }
        let sets: Vec<TaskSet> = slots
            .into_iter()
            .map(|s| s.expect("every canonical slot is filled")) // lint:allow: hits and misses cover all slots
            .collect();
        timing::record("suite.total", start.elapsed());

        Suite {
            seed,
            sdss,
            sqlshare,
            joborder,
            spider,
            sets,
        }
    }

    /// The sampled dataset for a workload.
    pub fn dataset(&self, w: Workload) -> &Dataset {
        match w {
            Workload::Sdss => &self.sdss,
            Workload::SqlShare => &self.sqlshare,
            Workload::JoinOrder => &self.joborder,
            Workload::Spider => &self.spider,
        }
    }

    /// All derived task datasets, in canonical registry order.
    pub fn sets(&self) -> impl Iterator<Item = &TaskSet> {
        self.sets.iter()
    }

    /// The set of one `(task, workload)` pair, if the task derives from
    /// that workload.
    pub fn set(&self, id: TaskId, w: Workload) -> Option<&TaskSet> {
        self.sets
            .iter()
            .find(|s| s.task.id() == id && s.workload == w)
    }

    /// Typed examples of one `(task, workload)` pair (empty when the task
    /// does not derive from `w`).
    fn typed<E: 'static>(&self, id: TaskId, w: Workload) -> &[E] {
        self.set(id, w)
            .and_then(|s| s.examples.downcast_ref::<Vec<E>>())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Syntax task examples for a workload.
    pub fn syntax_for(&self, w: Workload) -> &[SyntaxExample] {
        self.typed(TaskId::Syntax, w)
    }

    /// Token task examples for a workload.
    pub fn tokens_for(&self, w: Workload) -> &[TokenExample] {
        self.typed(TaskId::MissToken, w)
    }

    /// Equivalence task examples for a workload.
    pub fn equiv_for(&self, w: Workload) -> &[EquivExample] {
        self.typed(TaskId::Equiv, w)
    }

    /// Performance task examples (SDSS only).
    pub fn perf(&self) -> &[PerfExample] {
        self.typed(TaskId::Perf, Workload::Sdss)
    }

    /// Explanation task examples (Spider only).
    pub fn explain(&self) -> &[ExplainExample] {
        self.typed(TaskId::Explain, Workload::Spider)
    }

    /// Dialect-translation task examples for a workload.
    pub fn translate_for(&self, w: Workload) -> &[TranslateExample] {
        self.typed(TaskId::Translate, w)
    }

    /// A [`crate::synth::SynthConfig`] seeded by this suite: streamed
    /// synthesis in the character of `base`, keyed to the suite's master
    /// seed so `repro --synth` runs are reproducible alongside the
    /// pinned datasets (which stay untouched — synthesis never feeds
    /// back into the suite).
    pub fn synth_config(
        &self,
        base: Workload,
        n: u64,
        shards: usize,
        jobs: usize,
        target_json: Option<String>,
    ) -> crate::synth::SynthConfig {
        crate::synth::SynthConfig {
            base,
            seed: self.seed,
            n,
            shards,
            jobs,
            target_json,
        }
    }
}

/// Canonical slot of a workload in the fixed four-element build list.
fn workload_slot(w: Workload) -> usize {
    match w {
        Workload::Sdss => 0,
        Workload::SqlShare => 1,
        Workload::JoinOrder => 2,
        Workload::Spider => 3,
    }
}

/// Store entry name of one task set, e.g. `syntax_sdss`.
fn set_name(task: &dyn DynTask, w: Workload) -> String {
    format!("{}_{}", task.id().short(), slug(w.name()))
}

/// Lowercased, dash-free workload slug (`Join-Order` → `joinorder`).
fn slug(name: &str) -> String {
    name.to_lowercase().replace('-', "")
}
