//! The benchmark suite: all sampled workloads and derived task datasets,
//! built deterministically from one master seed.

use crate::{par, timing};
use squ_tasks::{
    build_equiv_dataset, build_explain_dataset, build_perf_dataset, build_syntax_dataset,
    build_token_dataset, EquivExample, ExplainExample, PerfExample, SyntaxExample, TokenExample,
};
use squ_workload::{build, Dataset, Workload};

/// The paper's master seed (the year of the SDSS log slice).
pub const PAPER_SEED: u64 = 2023;

/// All datasets of the benchmark, fully materialized.
#[derive(Debug, Clone)]
pub struct Suite {
    /// Master seed.
    pub seed: u64,
    /// SDSS sampled workload (285 queries, with elapsed times).
    pub sdss: Dataset,
    /// SQLShare sampled workload (250 queries).
    pub sqlshare: Dataset,
    /// Join-Order workload (157 queries).
    pub joborder: Dataset,
    /// Spider sampled workload (200 queries, with descriptions).
    pub spider: Dataset,
    /// Syntax-error task data per task workload.
    pub syntax: Vec<(Workload, Vec<SyntaxExample>)>,
    /// Missing-token task data per task workload.
    pub tokens: Vec<(Workload, Vec<TokenExample>)>,
    /// Equivalence task data per task workload.
    pub equiv: Vec<(Workload, Vec<EquivExample>)>,
    /// Performance task data (SDSS only).
    pub perf: Vec<PerfExample>,
    /// Explanation task data (Spider only).
    pub explain: Vec<ExplainExample>,
}

/// One derived-dataset build job; the enum lets heterogeneous builds
/// share a single deterministic worker pool.
enum DerivedJob<'a> {
    Syntax(&'a Dataset),
    Tokens(&'a Dataset),
    Equiv(&'a Dataset),
    Perf(&'a Dataset),
    Explain(&'a Dataset),
}

/// Result of a [`DerivedJob`]; variants mirror the job list one-to-one.
enum DerivedOut {
    Syntax(Workload, Vec<SyntaxExample>),
    Tokens(Workload, Vec<TokenExample>),
    Equiv(Workload, Vec<EquivExample>),
    Perf(Vec<PerfExample>),
    Explain(Vec<ExplainExample>),
}

impl Suite {
    /// Build the full suite from a master seed, using all available
    /// cores. Building includes the differential verification of every
    /// equivalence pair, so this is the dominant cost of a run.
    ///
    /// Equivalent to `new_with_jobs(seed, par::available_jobs())`; the
    /// result is byte-identical for every job count.
    pub fn new(seed: u64) -> Suite {
        Suite::new_with_jobs(seed, par::available_jobs())
    }

    /// Build the full suite on up to `jobs` worker threads (`1` =
    /// sequential). Determinism is unconditional: every dataset is built
    /// from its own seeded generator and results are reassembled in
    /// canonical declaration order, so the suite content does not depend
    /// on `jobs` or thread scheduling.
    pub fn new_with_jobs(seed: u64, jobs: usize) -> Suite {
        let start = std::time::Instant::now();

        // phase 1: the four sampled workloads, mutually independent
        let workloads = par::map(
            jobs,
            vec![
                Workload::Sdss,
                Workload::SqlShare,
                Workload::JoinOrder,
                Workload::Spider,
            ],
            |w| timing::time(&format!("suite.workload.{}", w.name()), || build(w, seed)),
        );
        let [sdss, sqlshare, joborder, spider]: [Dataset; 4] =
            workloads.try_into().expect("four workloads in, four out"); // lint:allow: map preserves length

        // phase 2: derived task datasets. Equivalence jobs lead the queue
        // because differential verification dominates the wall-clock, so
        // they get threads first; output order is fixed by the job list.
        let task_sets = [&sdss, &sqlshare, &joborder];
        let mut jobs_list: Vec<DerivedJob<'_>> = Vec::new();
        jobs_list.extend(task_sets.iter().map(|ds| DerivedJob::Equiv(ds)));
        jobs_list.extend(task_sets.iter().map(|ds| DerivedJob::Syntax(ds)));
        jobs_list.extend(task_sets.iter().map(|ds| DerivedJob::Tokens(ds)));
        jobs_list.push(DerivedJob::Perf(&sdss));
        jobs_list.push(DerivedJob::Explain(&spider));

        let outputs = par::map(jobs, jobs_list, |job| match job {
            DerivedJob::Syntax(ds) => {
                timing::time(&format!("suite.task.syntax.{}", ds.workload.name()), || {
                    DerivedOut::Syntax(ds.workload, build_syntax_dataset(ds, seed))
                })
            }
            DerivedJob::Tokens(ds) => {
                timing::time(&format!("suite.task.tokens.{}", ds.workload.name()), || {
                    DerivedOut::Tokens(ds.workload, build_token_dataset(ds, seed))
                })
            }
            DerivedJob::Equiv(ds) => {
                timing::time(&format!("suite.task.equiv.{}", ds.workload.name()), || {
                    DerivedOut::Equiv(ds.workload, build_equiv_dataset(ds, seed))
                })
            }
            DerivedJob::Perf(ds) => timing::time("suite.task.perf", || {
                DerivedOut::Perf(build_perf_dataset(ds))
            }),
            DerivedJob::Explain(ds) => timing::time("suite.task.explain", || {
                DerivedOut::Explain(build_explain_dataset(ds))
            }),
        });

        // reassemble in canonical field order (syntax, tokens, equiv each
        // in task-workload order) regardless of the queue order above
        let mut syntax = Vec::new();
        let mut tokens = Vec::new();
        let mut equiv = Vec::new();
        let mut perf = Vec::new();
        let mut explain = Vec::new();
        for out in outputs {
            match out {
                DerivedOut::Syntax(w, v) => syntax.push((w, v)),
                DerivedOut::Tokens(w, v) => tokens.push((w, v)),
                DerivedOut::Equiv(w, v) => equiv.push((w, v)),
                DerivedOut::Perf(v) => perf = v,
                DerivedOut::Explain(v) => explain = v,
            }
        }
        timing::record("suite.total", start.elapsed());

        Suite {
            seed,
            sdss,
            sqlshare,
            joborder,
            spider,
            syntax,
            tokens,
            equiv,
            perf,
            explain,
        }
    }

    /// The sampled dataset for a workload.
    pub fn dataset(&self, w: Workload) -> &Dataset {
        match w {
            Workload::Sdss => &self.sdss,
            Workload::SqlShare => &self.sqlshare,
            Workload::JoinOrder => &self.joborder,
            Workload::Spider => &self.spider,
        }
    }

    /// Syntax task examples for a workload.
    pub fn syntax_for(&self, w: Workload) -> &[SyntaxExample] {
        self.syntax
            .iter()
            .find(|(wk, _)| *wk == w)
            .map(|(_, v)| v.as_slice())
            .unwrap_or(&[])
    }

    /// Token task examples for a workload.
    pub fn tokens_for(&self, w: Workload) -> &[TokenExample] {
        self.tokens
            .iter()
            .find(|(wk, _)| *wk == w)
            .map(|(_, v)| v.as_slice())
            .unwrap_or(&[])
    }

    /// Equivalence task examples for a workload.
    pub fn equiv_for(&self, w: Workload) -> &[EquivExample] {
        self.equiv
            .iter()
            .find(|(wk, _)| *wk == w)
            .map(|(_, v)| v.as_slice())
            .unwrap_or(&[])
    }
}
