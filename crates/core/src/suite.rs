//! The benchmark suite: all sampled workloads and derived task datasets,
//! built deterministically from one master seed.

use squ_tasks::{
    build_equiv_dataset, build_explain_dataset, build_perf_dataset, build_syntax_dataset,
    build_token_dataset, EquivExample, ExplainExample, PerfExample, SyntaxExample, TokenExample,
};
use squ_workload::{build, Dataset, Workload};

/// The paper's master seed (the year of the SDSS log slice).
pub const PAPER_SEED: u64 = 2023;

/// All datasets of the benchmark, fully materialized.
#[derive(Debug, Clone)]
pub struct Suite {
    /// Master seed.
    pub seed: u64,
    /// SDSS sampled workload (285 queries, with elapsed times).
    pub sdss: Dataset,
    /// SQLShare sampled workload (250 queries).
    pub sqlshare: Dataset,
    /// Join-Order workload (157 queries).
    pub joborder: Dataset,
    /// Spider sampled workload (200 queries, with descriptions).
    pub spider: Dataset,
    /// Syntax-error task data per task workload.
    pub syntax: Vec<(Workload, Vec<SyntaxExample>)>,
    /// Missing-token task data per task workload.
    pub tokens: Vec<(Workload, Vec<TokenExample>)>,
    /// Equivalence task data per task workload.
    pub equiv: Vec<(Workload, Vec<EquivExample>)>,
    /// Performance task data (SDSS only).
    pub perf: Vec<PerfExample>,
    /// Explanation task data (Spider only).
    pub explain: Vec<ExplainExample>,
}

impl Suite {
    /// Build the full suite from a master seed. Building includes the
    /// differential verification of every equivalence pair, so this takes
    /// a few seconds.
    pub fn new(seed: u64) -> Suite {
        let sdss = build(Workload::Sdss, seed);
        let sqlshare = build(Workload::SqlShare, seed);
        let joborder = build(Workload::JoinOrder, seed);
        let spider = build(Workload::Spider, seed);

        let task_sets = [&sdss, &sqlshare, &joborder];
        let syntax = task_sets
            .iter()
            .map(|ds| (ds.workload, build_syntax_dataset(ds, seed)))
            .collect();
        let tokens = task_sets
            .iter()
            .map(|ds| (ds.workload, build_token_dataset(ds, seed)))
            .collect();
        let equiv = task_sets
            .iter()
            .map(|ds| (ds.workload, build_equiv_dataset(ds, seed)))
            .collect();
        let perf = build_perf_dataset(&sdss);
        let explain = build_explain_dataset(&spider);

        Suite {
            seed,
            sdss,
            sqlshare,
            joborder,
            spider,
            syntax,
            tokens,
            equiv,
            perf,
            explain,
        }
    }

    /// The sampled dataset for a workload.
    pub fn dataset(&self, w: Workload) -> &Dataset {
        match w {
            Workload::Sdss => &self.sdss,
            Workload::SqlShare => &self.sqlshare,
            Workload::JoinOrder => &self.joborder,
            Workload::Spider => &self.spider,
        }
    }

    /// Syntax task examples for a workload.
    pub fn syntax_for(&self, w: Workload) -> &[SyntaxExample] {
        self.syntax
            .iter()
            .find(|(wk, _)| *wk == w)
            .map(|(_, v)| v.as_slice())
            .unwrap_or(&[])
    }

    /// Token task examples for a workload.
    pub fn tokens_for(&self, w: Workload) -> &[TokenExample] {
        self.tokens
            .iter()
            .find(|(wk, _)| *wk == w)
            .map(|(_, v)| v.as_slice())
            .unwrap_or(&[])
    }

    /// Equivalence task examples for a workload.
    pub fn equiv_for(&self, w: Workload) -> &[EquivExample] {
        self.equiv
            .iter()
            .find(|(wk, _)| *wk == w)
            .map(|(_, v)| v.as_slice())
            .unwrap_or(&[])
    }
}
